// Command bigmac reproduces the Big MAC attack of §6 (first observed by
// Clement et al., NSDI'09): a single malicious client whose request
// authenticators are valid for the primary but corrupt for the backups
// poisons batches, stalls execution, forces view changes, and crashes
// replicas — collapsing the throughput of a deployment with hundreds of
// correct clients to zero.
//
// With -discover, the tool instead runs an AVD campaign and reports how
// many tests the fitness-guided exploration needed to find an attack of
// this class (the paper: "a few tens of iterations").
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"avd/internal/cluster"
	"avd/internal/core"
	"avd/internal/graycode"
	"avd/internal/plugin"
	"avd/internal/trace"
)

func main() {
	var (
		clients  = flag.Int64("clients", 250, "correct clients in the deployment")
		mask     = flag.Uint64("mask", 0xEEE, "effective 12-bit corruption bitmask (default: all backup entries)")
		measure  = flag.Duration("measure", 2*time.Second, "virtual measurement window")
		discover = flag.Bool("discover", false, "run an AVD campaign to discover the attack instead")
		budget   = flag.Int("budget", 125, "campaign budget with -discover")
		seed     = flag.Int64("seed", 1, "seed with -discover")
		workers  = flag.Int("workers", 1, "parallel test-execution workers with -discover (results are reproducible per seed+workers pair)")
	)
	flag.Parse()

	w := cluster.DefaultWorkload()
	w.Measure = *measure
	target, err := cluster.NewTarget(w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bigmac:", err)
		os.Exit(1)
	}
	runner := target.Runner

	if *discover {
		runDiscovery(target, *budget, *seed, *workers)
		return
	}

	space, err := core.Space(target.Plugins()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bigmac:", err)
		os.Exit(1)
	}
	coord := int64(graycode.Decode(*mask))
	sc := space.New(map[string]int64{
		plugin.DimMACMask:          coord,
		plugin.DimCorrectClients:   *clients,
		plugin.DimMaliciousClients: 1,
	})
	fmt.Printf("deployment: 4 replicas (f=1), %d correct clients, 1 malicious client\n", *clients)
	fmt.Printf("attack: corrupt bit mask %#03x (coordinate %d in Gray code)\n", *mask, coord)
	fmt.Printf("         bit n corrupts the (n mod 12)-th generateMAC call of the malicious client\n\n")

	baseline := runner.Baseline(*clients)
	res, rep := runner.RunReport(sc)
	fmt.Printf("baseline throughput (no attack): %9.0f req/s\n", baseline)
	fmt.Printf("throughput under attack:         %9.0f req/s\n", res.Throughput)
	fmt.Printf("impact: %.3f   avg latency: %v   p99: %v\n",
		res.Impact, res.AvgLatency.Round(time.Millisecond), rep.P99Latency.Round(time.Millisecond))
	fmt.Printf("poisoned batches rejected: %d   retransmissions: %d   state transfers: %d\n",
		rep.RejectedBatches, rep.Retransmissions, rep.StateTransfers)
	fmt.Printf("view changes installed: %d   timer-initiated view changes: %d\n",
		rep.ViewsInstalled, rep.TimerViewChanges)
	if len(rep.CrashedReplicas) > 0 {
		fmt.Printf("crashed replicas: %v\n", rep.CrashedReplicas)
		for i, id := range rep.CrashedReplicas {
			fmt.Printf("  replica %d: %s\n", id, rep.CrashReasons[i])
		}
	} else {
		fmt.Println("crashed replicas: none")
	}
	if res.Throughput < 500 {
		fmt.Println("\nresult: the deployment is DOWN (dark point by the paper's Figure-3 criterion)")
	}
}

func runDiscovery(target *cluster.Target, budget int, seed int64, workers int) {
	eng, err := core.NewEngine(target,
		core.WithSeed(seed), core.WithBudget(budget), core.WithWorkers(workers))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bigmac:", err)
		os.Exit(1)
	}
	fmt.Printf("running AVD discovery campaign (budget %d, seed %d, %d workers)...\n", budget, seed, workers)
	results, err := eng.RunAll(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "bigmac:", err)
		os.Exit(1)
	}
	firstDark := 0
	for i, r := range results {
		if r.Throughput < 500 {
			firstDark = i + 1
			break
		}
	}
	trace.SummarizeCampaign(os.Stdout, "AVD", results)
	if firstDark > 0 {
		r := results[firstDark-1]
		fmt.Printf("first Big MAC-class attack (throughput < 500 req/s) found at test %d:\n", firstDark)
		fmt.Printf("  %s (%s)\n", r.Scenario.Key(), trace.FormatScenarioMask(r, true))
		fmt.Printf("  throughput %.0f req/s, impact %.3f, %d crashed replicas\n",
			r.Throughput, r.Impact, r.CrashedReplicas)
	} else {
		fmt.Printf("no sub-500 req/s attack found within %d tests; try another seed\n", budget)
	}
}
