// Command slowprimary reproduces the previously undocumented PBFT bug
// that AVD discovered (§6): the implementation keeps a single
// view-change timer per replica instead of one per request, so a
// malicious primary that executes one client request per timer period
// (5 seconds by default) is never suspected — diminishing PBFT
// throughput to 0.2 requests/second. If a malicious client cooperates
// with the primary, the primary can ignore correct clients entirely,
// and the useful throughput drops to 0.
//
// The experiment uses the paper's real 5-second timer (the system is
// nearly idle, so simulation cost is negligible) and compares the buggy
// single-timer implementation with the spec-compliant per-request
// timers that fix the bug.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"avd/internal/cluster"
	"avd/internal/core"
	"avd/internal/pbft"
	"avd/internal/plugin"
)

func main() {
	var (
		clients = flag.Int64("clients", 20, "correct clients in the deployment")
		window  = flag.Duration("measure", 60*time.Second, "virtual measurement window")
		timer   = flag.Duration("timer", 5*time.Second, "view-change timer period (paper default 5s)")
	)
	flag.Parse()

	type row struct {
		name    string
		mode    pbft.TimerMode
		slow    bool
		collude bool
	}
	rows := []row{
		{"healthy primary", pbft.SingleTimer, false, false},
		{"slow primary, single timer (the bug)", pbft.SingleTimer, true, false},
		{"slow primary + colluding client", pbft.SingleTimer, true, true},
		{"slow primary, per-request timers (fix)", pbft.PerRequestTimer, true, false},
		{"slow primary + colluder, per-request timers", pbft.PerRequestTimer, true, true},
	}

	fmt.Printf("deployment: 4 replicas (f=1), %d correct clients; view-change timer %v; window %v\n",
		*clients, *timer, *window)
	fmt.Printf("slow primary executes one request per %v (0.9 x timer period)\n\n", (*timer)*9/10)
	fmt.Printf("%-46s %14s %14s %8s %s\n", "configuration", "useful req/s", "avg latency", "views", "verdict")

	for _, r := range rows {
		w := cluster.DefaultWorkload()
		w.Measure = *window
		w.Warmup = 2 * time.Second
		w.PBFT.ViewChangeTimeout = *timer
		w.PBFT.NewViewTimeout = *timer / 2
		w.PBFT.TimerMode = r.mode
		// Clients retry well within the timer period, as real PBFT
		// clients do.
		w.Correct.Retry = 500 * time.Millisecond
		w.Correct.RetryCap = 2 * time.Second
		w.Malicious.Retry = 500 * time.Millisecond
		w.Malicious.RetryCap = 2 * time.Second
		runner, err := cluster.NewRunner(w)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slowprimary:", err)
			os.Exit(1)
		}
		space, err := core.Space(plugin.NewMACCorrupt(), plugin.NewClients(), &plugin.SlowPrimary{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "slowprimary:", err)
			os.Exit(1)
		}
		vals := map[string]int64{
			plugin.DimMACMask:          0,
			plugin.DimCorrectClients:   *clients,
			plugin.DimMaliciousClients: 1,
			plugin.DimSlowIntervalMS:   int64((*timer) * 9 / 10 / time.Millisecond),
		}
		if r.slow {
			vals[plugin.DimSlowPrimary] = 1
		}
		if r.collude {
			vals[plugin.DimCollude] = 1
		}
		res, rep := runner.RunReport(space.New(vals))
		verdict := "primary kept"
		if rep.ViewsInstalled > 0 {
			verdict = fmt.Sprintf("primary deposed (%d view changes)", rep.ViewsInstalled)
		}
		fmt.Printf("%-46s %14.2f %14v %8d %s\n",
			r.name, res.Throughput, res.AvgLatency.Round(time.Millisecond), rep.ViewsInstalled, verdict)
	}

	fmt.Println("\npaper §6: single timer + slow primary -> 0.2 req/s; with collusion -> 0 useful req/s;")
	fmt.Println("Aardvark avoids this class of bug by enforcing minimum primary throughput.")
}
