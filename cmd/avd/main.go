// Command avd runs vulnerability-discovery campaigns against a
// simulated system under test: the paper's fitness-guided controller
// (Algorithm 1), the random baseline, a genetic explorer, or the
// coverage-guided explorer (timeline-hash feedback over a scenario
// corpus), over any combination of the target's testing-tool plugins. The engine is
// protocol-agnostic — the same search drives the PBFT deployment (the
// paper's case study) or the Raft cluster (-target raft).
//
// With -state the campaign is crash-safe: progress is journaled to a
// durable checkpoint after every batch and the process resumes from it
// on restart, so a SIGKILL (or power loss) costs at most the batch in
// flight. With -shard k/K the process runs one deterministic sub-space
// of a K-way sharded campaign; cmd/avdd supervises a full set of shards
// and merges their checkpoints.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"avd/internal/campaign"
	"avd/internal/core"
	"avd/internal/trace"
)

func main() {
	var (
		targetName = flag.String("target", "pbft", "system under test: pbft | raft")
		strategy   = flag.String("strategy", "avd", "exploration strategy: avd | random | genetic | coverage")
		tests      = flag.Int("tests", 125, "test budget")
		seed       = flag.Int64("seed", 1, "random seed")
		measure    = flag.Duration("measure", 1500*time.Millisecond, "virtual measurement window per test")
		pluginsCS  = flag.String("plugins", "", "comma-separated plugins (pbft: maccorrupt,clients,reorder,faultplan,slowprimary; raft: raftclients,leaderflap); empty = target default")
		faultsCS   = flag.String("faults", "", "comma-separated fault-vocabulary-v2 plugins armed on top of -plugins: crash (crash-restart with optional durable-state loss), skew (per-node clock drift), oneway (asymmetric partition), corrupt, dup (per-link ModMask corruption/duplication)")
		stepBudget = flag.Uint64("stepbudget", 2_000_000, "per-test simulation event budget; a scenario that exceeds it is reported hung instead of stalling the campaign (0 = unlimited)")
		workers    = flag.Int("workers", 1, "parallel test-execution workers (results are reproducible per seed+workers pair)")
		csvPath    = flag.String("csv", "", "write per-test results to this CSV file")
		topN       = flag.Int("top", 5, "print the N best attacks found")
		quiet      = flag.Bool("quiet", false, "suppress per-test progress output")
		minimize   = flag.Bool("minimize", false, "delta-debug the best attack found down to a minimal fault schedule that still reproduces it")
		minThresh  = flag.Float64("minthreshold", 0, "impact a minimized scenario must keep when no oracle was violated (0 = 90% of the original's impact)")
		minRuns    = flag.Int("minruns", 256, "re-execution budget for -minimize")
		stateDir   = flag.String("state", "", "durable state directory: journal progress after every batch and resume from it on restart")
		shardSpec  = flag.String("shard", "", "run one shard of a K-way sharded campaign, as k/K (0-based); requires a deterministic shard plan shared with the supervisor")
	)
	flag.Parse()

	shard, shards, err := campaign.ParseShard(*shardSpec)
	if err != nil {
		fatal(err)
	}
	setup, err := campaign.Build(campaign.Config{
		Target:     *targetName,
		Strategy:   *strategy,
		Tests:      *tests,
		Seed:       *seed,
		Measure:    *measure,
		Plugins:    *pluginsCS,
		Faults:     *faultsCS,
		StepBudget: *stepBudget,
		Workers:    *workers,
		Shard:      shard,
		Shards:     shards,
	})
	if err != nil {
		fatal(err)
	}
	target, space, explorer := setup.Target, setup.Space, setup.Explorer

	opts := []core.EngineOption{
		core.WithExplorer(explorer),
		core.WithBudget(*tests),
		core.WithWorkers(*workers),
	}

	// Durable state: validate the manifest (refusing a resume whose flags
	// drifted), open the checkpoint pair, and wire replay + journaling.
	var durable *core.DurableCheckpoint
	var paths campaign.StatePaths
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			fatal(err)
		}
		paths = campaign.PathsFor(*stateDir, shard, shards)
		saved, err := core.LoadManifest(paths.Manifest)
		switch {
		case err == nil:
			if verr := setup.Manifest.Validate(saved); verr != nil {
				fatal(verr)
			}
		case errors.Is(err, os.ErrNotExist):
			if werr := core.WriteManifest(paths.Manifest, setup.Manifest); werr != nil {
				fatal(werr)
			}
		default:
			fatal(err)
		}
		var info core.RecoveryInfo
		durable, info, err = core.OpenDurable(paths.Checkpoint, space)
		if err != nil {
			fatal(err)
		}
		if info.Resumed() > 0 || info.TornTail {
			fmt.Printf("resumed from %s: %s\n", paths.Checkpoint, info)
		}
		opts = append(opts, core.WithDurable(durable))
	}

	observer := func(i int, res core.Result) {
		if !*quiet {
			fmt.Printf("%4d impact=%.3f tput=%8.0f lat=%-10v %s (%s)%s%s\n",
				i, res.Impact, res.Throughput, res.AvgLatency.Round(time.Millisecond),
				res.Scenario.Key(), res.Generator, violationSuffix(res), errorSuffix(res))
		}
		if paths.Heartbeat != "" {
			// Liveness for the supervisor: progress count, rewritten in
			// place (the supervisor watches the mtime).
			os.WriteFile(paths.Heartbeat, []byte(fmt.Sprintf("%d\n", i)), 0o644)
		}
	}
	opts = append(opts, core.WithObserver(observer))

	eng, err := core.NewEngine(target, opts...)
	if err != nil {
		fatal(err)
	}

	shardNote := ""
	if shards > 1 {
		shardNote = fmt.Sprintf(" shard=%d/%d (%s)", shard, shards, setup.Plan)
	}
	fmt.Printf("target=%s strategy=%s hyperspace=%d scenarios budget=%d workers=%d%s\n",
		target.Name(), *strategy, space.Size(), *tests, *workers, shardNote)

	// Ctrl-C (or the supervisor's drain signal) cancels the campaign; the
	// batch in flight still completes and reaches the checkpoint, and the
	// partial results are summarized below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	results, runErr := eng.RunAll(ctx)
	interrupted := false
	if runErr != nil {
		interrupted = errors.Is(runErr, context.Canceled)
		fmt.Fprintf(os.Stderr, "avd: campaign ended early: %v\n", runErr)
	}
	if durable != nil {
		// Fold the journal into a final snapshot so the next process (or
		// the supervisor's merge) starts from one clean file.
		if err := durable.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("durable checkpoint: %s (%d results)\n", durable.Path(), durable.Len())
	}
	fmt.Printf("\n%d tests in %v (wall)\n\n", len(results), time.Since(start).Round(time.Second))
	if len(results) > 0 {
		trace.SummarizeCampaign(os.Stdout, *strategy, results)
		if cov, ok := explorer.(*core.CoverageExplorer); ok {
			fmt.Printf("  corpus: %d entries kept of %d distinct behavior sets observed\n",
				cov.Corpus().Len(), cov.Corpus().Behaviors())
		}

		best := append([]core.Result(nil), results...)
		for i := 0; i < len(best); i++ {
			for j := i + 1; j < len(best); j++ {
				if best[j].Impact > best[i].Impact {
					best[i], best[j] = best[j], best[i]
				}
			}
		}
		n := *topN
		if n > len(best) {
			n = len(best)
		}
		fmt.Printf("\ntop %d attacks:\n", n)
		for i := 0; i < n; i++ {
			r := best[i]
			fmt.Printf("  %d. impact=%.3f tput=%.0f req/s lat=%v crash=%d injected=%d/%d  %s%s%s\n",
				i+1, r.Impact, r.Throughput, r.AvgLatency.Round(time.Millisecond),
				r.CrashedReplicas, r.InjectedCrashes, r.Restarts,
				r.Scenario.Key(), violationSuffix(r), errorSuffix(r))
		}

		if *minimize {
			runMinimize(target, results, *minThresh, *minRuns)
		}

		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			if err := trace.WriteCampaignCSV(f, *strategy, results); err != nil {
				fatal(err)
			}
			fmt.Printf("\nwrote %s\n", *csvPath)
		}
	}
	if interrupted {
		// Distinguish "drained on signal, checkpoint flushed" from
		// natural completion so a supervisor knows the shard is not done.
		os.Exit(3)
	}
	if runErr != nil {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avd:", err)
	os.Exit(1)
}

// errorSuffix flags tests that degraded instead of completing: a hung
// scenario (step budget exhausted) or a panicking target.
func errorSuffix(res core.Result) string {
	switch {
	case res.Hung:
		return " HUNG"
	case res.Error != "":
		return " ERROR"
	default:
		return ""
	}
}

// violationSuffix renders a result's violated invariants for progress
// lines, empty when the run broke nothing.
func violationSuffix(res core.Result) string {
	if len(res.Violations) == 0 {
		return ""
	}
	parts := make([]string, len(res.Violations))
	for i, v := range res.Violations {
		parts[i] = v.Invariant
	}
	return " VIOLATES " + strings.Join(parts, ",")
}

// runMinimize delta-debugs the campaign's most vulnerable result — a
// scenario with oracle violations beats any violation-free impact — and
// prints the reduction walkthrough.
func runMinimize(target core.Target, results []core.Result, threshold float64, maxRuns int) {
	pick := results[0]
	for _, r := range results[1:] {
		if len(r.Violations) != len(pick.Violations) {
			if len(r.Violations) > len(pick.Violations) {
				pick = r
			}
			continue
		}
		if r.Impact > pick.Impact {
			pick = r
		}
	}

	fmt.Printf("\nminimizing %s (impact=%.3f weight=%d)%s\n",
		pick.Scenario.Key(), pick.Impact, pick.Scenario.Weight(), violationSuffix(pick))
	m, err := core.Minimize(target, pick, core.MinimizeConfig{
		ImpactThreshold: threshold,
		MaxRuns:         maxRuns,
		Observer: func(step core.MinimizeStep) {
			verdict := "rejected"
			if step.Accepted {
				verdict = "accepted"
			}
			fmt.Printf("  probe %-16s impact=%.3f weight=%d %s%s\n",
				step.Dimension, step.Result.Impact, step.Result.Scenario.Weight(),
				verdict, violationSuffix(step.Result))
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "avd: minimize:", err)
		return
	}
	fmt.Printf("minimal reproduction after %d runs: %s (impact=%.3f weight=%d, was %d)%s\n",
		m.Runs, m.Minimal.Scenario.Key(), m.Minimal.Impact,
		m.Minimal.Scenario.Weight(), m.Original.Scenario.Weight(), violationSuffix(m.Minimal))
	if len(m.Invariants) > 0 {
		fmt.Printf("  still violates: %s\n", strings.Join(m.Invariants, ", "))
	} else {
		fmt.Printf("  still holds impact >= %.3f\n", m.ImpactThreshold)
	}
	if !m.Reduced {
		fmt.Println("  (already minimal: no probed reduction reproduces)")
	}
}
