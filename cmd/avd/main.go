// Command avd runs vulnerability-discovery campaigns against the
// simulated PBFT deployment: the paper's fitness-guided controller
// (Algorithm 1), the random baseline, or an exhaustive sweep, over any
// combination of the available testing-tool plugins.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"avd/internal/cluster"
	"avd/internal/core"
	"avd/internal/plugin"
	"avd/internal/trace"
)

func main() {
	var (
		strategy  = flag.String("strategy", "avd", "exploration strategy: avd | random | genetic")
		tests     = flag.Int("tests", 125, "test budget")
		seed      = flag.Int64("seed", 1, "random seed")
		measure   = flag.Duration("measure", 1500*time.Millisecond, "virtual measurement window per test")
		pluginsCS = flag.String("plugins", "maccorrupt,clients", "comma-separated plugins: maccorrupt,clients,reorder,faultplan,slowprimary")
		csvPath   = flag.String("csv", "", "write per-test results to this CSV file")
		topN      = flag.Int("top", 5, "print the N best attacks found")
		quiet     = flag.Bool("quiet", false, "suppress per-test progress output")
	)
	flag.Parse()

	plugins, err := parsePlugins(*pluginsCS)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avd:", err)
		os.Exit(1)
	}
	w := cluster.DefaultWorkload()
	w.Measure = *measure
	runner, err := cluster.NewRunner(w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avd:", err)
		os.Exit(1)
	}
	space, err := core.Space(plugins...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avd:", err)
		os.Exit(1)
	}

	var explorer core.Explorer
	switch *strategy {
	case "avd":
		explorer, err = core.NewController(core.ControllerConfig{Seed: *seed, SeedTests: 10}, plugins...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "avd:", err)
			os.Exit(1)
		}
	case "random":
		explorer = core.NewRandomExplorer(space, *seed)
	case "genetic":
		explorer, err = core.NewGenetic(core.GeneticConfig{Seed: *seed}, plugins...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "avd:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "avd: unknown strategy %q (want avd, random or genetic)\n", *strategy)
		os.Exit(1)
	}

	fmt.Printf("strategy=%s plugins=%s hyperspace=%d scenarios budget=%d\n",
		*strategy, *pluginsCS, space.Size(), *tests)
	start := time.Now()
	var obs core.CampaignObserver
	if !*quiet {
		obs = func(i int, res core.Result) {
			fmt.Printf("%4d impact=%.3f tput=%8.0f lat=%-10v %s (%s)\n",
				i, res.Impact, res.Throughput, res.AvgLatency.Round(time.Millisecond),
				res.Scenario.Key(), res.Generator)
		}
	}
	results := core.CampaignWithObserver(explorer, runner, *tests, obs)
	fmt.Printf("\n%d tests in %v (wall)\n\n", len(results), time.Since(start).Round(time.Second))
	trace.SummarizeCampaign(os.Stdout, *strategy, results)

	best := append([]core.Result(nil), results...)
	for i := 0; i < len(best); i++ {
		for j := i + 1; j < len(best); j++ {
			if best[j].Impact > best[i].Impact {
				best[i], best[j] = best[j], best[i]
			}
		}
	}
	n := *topN
	if n > len(best) {
		n = len(best)
	}
	fmt.Printf("\ntop %d attacks:\n", n)
	for i := 0; i < n; i++ {
		r := best[i]
		fmt.Printf("  %d. impact=%.3f tput=%.0f req/s lat=%v crash=%d  %s\n",
			i+1, r.Impact, r.Throughput, r.AvgLatency.Round(time.Millisecond),
			r.CrashedReplicas, r.Scenario.Key())
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "avd:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteCampaignCSV(f, *strategy, results); err != nil {
			fmt.Fprintln(os.Stderr, "avd:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
}

func parsePlugins(cs string) ([]core.Plugin, error) {
	var out []core.Plugin
	for _, name := range strings.Split(cs, ",") {
		switch strings.TrimSpace(name) {
		case "maccorrupt":
			out = append(out, plugin.NewMACCorrupt())
		case "clients":
			out = append(out, plugin.NewClients())
		case "reorder":
			out = append(out, &plugin.Reorder{})
		case "faultplan":
			out = append(out, plugin.NewFaultPlan())
		case "slowprimary":
			out = append(out, &plugin.SlowPrimary{})
		case "":
		default:
			return nil, fmt.Errorf("unknown plugin %q", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no plugins selected")
	}
	return out, nil
}
