// Command avd runs vulnerability-discovery campaigns against a
// simulated system under test: the paper's fitness-guided controller
// (Algorithm 1), the random baseline, a genetic explorer, or the
// coverage-guided explorer (timeline-hash feedback over a scenario
// corpus), over any combination of the target's testing-tool plugins. The engine is
// protocol-agnostic — the same search drives the PBFT deployment (the
// paper's case study) or the Raft cluster (-target raft).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"avd/internal/cluster"
	"avd/internal/core"
	"avd/internal/plugin"
	"avd/internal/raftsim"
	"avd/internal/trace"
)

func main() {
	var (
		targetName = flag.String("target", "pbft", "system under test: pbft | raft")
		strategy   = flag.String("strategy", "avd", "exploration strategy: avd | random | genetic | coverage")
		tests      = flag.Int("tests", 125, "test budget")
		seed       = flag.Int64("seed", 1, "random seed")
		measure    = flag.Duration("measure", 1500*time.Millisecond, "virtual measurement window per test")
		pluginsCS  = flag.String("plugins", "", "comma-separated plugins (pbft: maccorrupt,clients,reorder,faultplan,slowprimary; raft: raftclients,leaderflap); empty = target default")
		faultsCS   = flag.String("faults", "", "comma-separated fault-vocabulary-v2 plugins armed on top of -plugins: crash (crash-restart with optional durable-state loss), skew (per-node clock drift), oneway (asymmetric partition), corrupt, dup (per-link ModMask corruption/duplication)")
		stepBudget = flag.Uint64("stepbudget", 2_000_000, "per-test simulation event budget; a scenario that exceeds it is reported hung instead of stalling the campaign (0 = unlimited)")
		workers    = flag.Int("workers", 1, "parallel test-execution workers (results are reproducible per seed+workers pair)")
		csvPath    = flag.String("csv", "", "write per-test results to this CSV file")
		topN       = flag.Int("top", 5, "print the N best attacks found")
		quiet      = flag.Bool("quiet", false, "suppress per-test progress output")
		minimize   = flag.Bool("minimize", false, "delta-debug the best attack found down to a minimal fault schedule that still reproduces it")
		minThresh  = flag.Float64("minthreshold", 0, "impact a minimized scenario must keep when no oracle was violated (0 = 90% of the original's impact)")
		minRuns    = flag.Int("minruns", 256, "re-execution budget for -minimize")
	)
	flag.Parse()

	target, err := buildTarget(*targetName, *pluginsCS, *faultsCS, *measure, *stepBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avd:", err)
		os.Exit(1)
	}
	space, err := core.Space(target.Plugins()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avd:", err)
		os.Exit(1)
	}

	var explorer core.Explorer
	switch *strategy {
	case "avd":
		explorer, err = core.NewController(core.ControllerConfig{Seed: *seed, SeedTests: 10}, target.Plugins()...)
	case "random":
		explorer = core.NewRandomExplorer(space, *seed)
	case "genetic":
		explorer, err = core.NewGenetic(core.GeneticConfig{Seed: *seed}, target.Plugins()...)
	case "coverage":
		explorer, err = core.NewCoverageExplorer(core.CoverageConfig{Seed: *seed}, target.Plugins()...)
	default:
		err = fmt.Errorf("unknown strategy %q (want avd, random, genetic or coverage)", *strategy)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "avd:", err)
		os.Exit(1)
	}

	opts := []core.EngineOption{
		core.WithExplorer(explorer),
		core.WithBudget(*tests),
		core.WithWorkers(*workers),
	}
	if !*quiet {
		opts = append(opts, core.WithObserver(func(i int, res core.Result) {
			fmt.Printf("%4d impact=%.3f tput=%8.0f lat=%-10v %s (%s)%s%s\n",
				i, res.Impact, res.Throughput, res.AvgLatency.Round(time.Millisecond),
				res.Scenario.Key(), res.Generator, violationSuffix(res), errorSuffix(res))
		}))
	}
	eng, err := core.NewEngine(target, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "avd:", err)
		os.Exit(1)
	}

	fmt.Printf("target=%s strategy=%s hyperspace=%d scenarios budget=%d workers=%d\n",
		target.Name(), *strategy, space.Size(), *tests, *workers)

	// Ctrl-C cancels the campaign; the partial results are still
	// summarized below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	results, runErr := eng.RunAll(ctx)
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "avd: campaign ended early: %v\n", runErr)
	}
	fmt.Printf("\n%d tests in %v (wall)\n\n", len(results), time.Since(start).Round(time.Second))
	if len(results) == 0 {
		return
	}
	trace.SummarizeCampaign(os.Stdout, *strategy, results)
	if cov, ok := explorer.(*core.CoverageExplorer); ok {
		fmt.Printf("  corpus: %d entries kept of %d distinct behavior sets observed\n",
			cov.Corpus().Len(), cov.Corpus().Behaviors())
	}

	best := append([]core.Result(nil), results...)
	for i := 0; i < len(best); i++ {
		for j := i + 1; j < len(best); j++ {
			if best[j].Impact > best[i].Impact {
				best[i], best[j] = best[j], best[i]
			}
		}
	}
	n := *topN
	if n > len(best) {
		n = len(best)
	}
	fmt.Printf("\ntop %d attacks:\n", n)
	for i := 0; i < n; i++ {
		r := best[i]
		fmt.Printf("  %d. impact=%.3f tput=%.0f req/s lat=%v crash=%d injected=%d/%d  %s%s%s\n",
			i+1, r.Impact, r.Throughput, r.AvgLatency.Round(time.Millisecond),
			r.CrashedReplicas, r.InjectedCrashes, r.Restarts,
			r.Scenario.Key(), violationSuffix(r), errorSuffix(r))
	}

	if *minimize {
		runMinimize(target, results, *minThresh, *minRuns)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "avd:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteCampaignCSV(f, *strategy, results); err != nil {
			fmt.Fprintln(os.Stderr, "avd:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
}

// errorSuffix flags tests that degraded instead of completing: a hung
// scenario (step budget exhausted) or a panicking target.
func errorSuffix(res core.Result) string {
	switch {
	case res.Hung:
		return " HUNG"
	case res.Error != "":
		return " ERROR"
	default:
		return ""
	}
}

// violationSuffix renders a result's violated invariants for progress
// lines, empty when the run broke nothing.
func violationSuffix(res core.Result) string {
	if len(res.Violations) == 0 {
		return ""
	}
	parts := make([]string, len(res.Violations))
	for i, v := range res.Violations {
		parts[i] = v.Invariant
	}
	return " VIOLATES " + strings.Join(parts, ",")
}

// runMinimize delta-debugs the campaign's most vulnerable result — a
// scenario with oracle violations beats any violation-free impact — and
// prints the reduction walkthrough.
func runMinimize(target core.Target, results []core.Result, threshold float64, maxRuns int) {
	pick := results[0]
	for _, r := range results[1:] {
		if len(r.Violations) != len(pick.Violations) {
			if len(r.Violations) > len(pick.Violations) {
				pick = r
			}
			continue
		}
		if r.Impact > pick.Impact {
			pick = r
		}
	}

	fmt.Printf("\nminimizing %s (impact=%.3f weight=%d)%s\n",
		pick.Scenario.Key(), pick.Impact, pick.Scenario.Weight(), violationSuffix(pick))
	m, err := core.Minimize(target, pick, core.MinimizeConfig{
		ImpactThreshold: threshold,
		MaxRuns:         maxRuns,
		Observer: func(step core.MinimizeStep) {
			verdict := "rejected"
			if step.Accepted {
				verdict = "accepted"
			}
			fmt.Printf("  probe %-16s impact=%.3f weight=%d %s%s\n",
				step.Dimension, step.Result.Impact, step.Result.Scenario.Weight(),
				verdict, violationSuffix(step.Result))
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "avd: minimize:", err)
		return
	}
	fmt.Printf("minimal reproduction after %d runs: %s (impact=%.3f weight=%d, was %d)%s\n",
		m.Runs, m.Minimal.Scenario.Key(), m.Minimal.Impact,
		m.Minimal.Scenario.Weight(), m.Original.Scenario.Weight(), violationSuffix(m.Minimal))
	if len(m.Invariants) > 0 {
		fmt.Printf("  still violates: %s\n", strings.Join(m.Invariants, ", "))
	} else {
		fmt.Printf("  still holds impact >= %.3f\n", m.ImpactThreshold)
	}
	if !m.Reduced {
		fmt.Println("  (already minimal: no probed reduction reproduces)")
	}
}

// buildTarget assembles the requested system under test with its plugin
// set; an empty plugin list uses the target's default attack surface.
// Fault-vocabulary-v2 plugins from -faults are appended on top, so
// `-faults crash` widens the default hyperspace instead of replacing it.
func buildTarget(name, pluginsCS, faultsCS string, measure time.Duration, stepBudget uint64) (core.Target, error) {
	switch name {
	case "pbft":
		plugins, err := parsePBFTPlugins(pluginsCS)
		if err != nil {
			return nil, err
		}
		w := cluster.DefaultWorkload()
		faults, err := parseFaults(faultsCS, int64(w.PBFT.N))
		if err != nil {
			return nil, err
		}
		w.Measure = measure
		w.StepBudget = stepBudget
		return cluster.NewTarget(w, append(plugins, faults...)...)
	case "raft":
		plugins, err := parseRaftPlugins(pluginsCS)
		if err != nil {
			return nil, err
		}
		w := raftsim.DefaultWorkload()
		faults, err := parseFaults(faultsCS, int64(w.Raft.N))
		if err != nil {
			return nil, err
		}
		w.Measure = measure
		w.StepBudget = stepBudget
		return raftsim.NewTarget(w, append(plugins, faults...)...)
	default:
		return nil, fmt.Errorf("unknown target %q (want pbft or raft)", name)
	}
}

// parseFaults maps -faults names to the shared fault-vocabulary-v2
// plugins, sized to the target cluster. "corrupt" and "dup" are two axes
// of the same netfaults plugin, so naming either (or both) arms it once.
func parseFaults(cs string, nodes int64) ([]core.Plugin, error) {
	var out []core.Plugin
	netFaults := false
	for _, name := range strings.Split(cs, ",") {
		switch strings.TrimSpace(name) {
		case "crash":
			out = append(out, plugin.NewCrashRestart())
		case "skew":
			out = append(out, plugin.NewClockSkew(nodes))
		case "oneway":
			out = append(out, plugin.NewOneWay(nodes))
		case "corrupt", "dup":
			netFaults = true
		case "":
		default:
			return nil, fmt.Errorf("unknown fault %q (want crash, skew, oneway, corrupt or dup)", name)
		}
	}
	if netFaults {
		out = append(out, plugin.NewNetFaults(nodes))
	}
	return out, nil
}

func parsePBFTPlugins(cs string) ([]core.Plugin, error) {
	var out []core.Plugin
	for _, name := range strings.Split(cs, ",") {
		switch strings.TrimSpace(name) {
		case "maccorrupt":
			out = append(out, plugin.NewMACCorrupt())
		case "clients":
			out = append(out, plugin.NewClients())
		case "reorder":
			out = append(out, &plugin.Reorder{})
		case "faultplan":
			out = append(out, plugin.NewFaultPlan())
		case "slowprimary":
			out = append(out, &plugin.SlowPrimary{})
		case "":
		default:
			return nil, fmt.Errorf("unknown pbft plugin %q", name)
		}
	}
	return out, nil
}

func parseRaftPlugins(cs string) ([]core.Plugin, error) {
	var out []core.Plugin
	for _, name := range strings.Split(cs, ",") {
		switch strings.TrimSpace(name) {
		case "raftclients":
			out = append(out, raftsim.NewClientsPlugin())
		case "leaderflap":
			out = append(out, raftsim.NewLeaderFlapPlugin())
		case "":
		default:
			return nil, fmt.Errorf("unknown raft plugin %q", name)
		}
	}
	return out, nil
}
