// Command fig3 regenerates Figure 3 of the paper: an exhaustively
// explored subset of the PBFT MAC-corruption hyperspace, plotted as a
// heat map with x = the MAC corruption bitmask coordinate (in Gray code)
// and y = the number of correct clients. Dark points are scenarios where
// PBFT's throughput drops below 500 requests/second, exposing the
// vertical-line structure that makes the space suitable for
// hill-climbing.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"avd/internal/cluster"
	"avd/internal/core"
	"avd/internal/plugin"
	"avd/internal/scenario"
	"avd/internal/trace"
)

func main() {
	var (
		maskMin   = flag.Int64("maskmin", 0, "sweep mask coordinates starting here")
		maskMax   = flag.Int64("maskmax", 1024, "sweep mask coordinates [maskmin, maskmax); the default window matches the paper's Figure 3 x-axis")
		maskStep  = flag.Int64("maskstep", 1, "coordinate stride (1 = full resolution, as in the paper)")
		clientsCS = flag.String("clients", "20,40,60,80,100", "comma-separated correct-client counts (the y axis)")
		workers   = flag.Int("workers", runtime.NumCPU(), "parallel test workers")
		measure   = flag.Duration("measure", 1500*time.Millisecond, "virtual measurement window per test")
		dark      = flag.Float64("dark", 500, "dark-point throughput threshold (req/s)")
		csvPath   = flag.String("csv", "", "write raw cells to this CSV file")
		cols      = flag.Int("cols", 128, "heat map width in character columns")
	)
	flag.Parse()

	clientCounts, err := parseInts(*clientsCS)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig3:", err)
		os.Exit(1)
	}
	w := cluster.DefaultWorkload()
	w.Measure = *measure
	runner, err := cluster.NewRunner(w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig3:", err)
		os.Exit(1)
	}
	space, err := core.Space(plugin.NewMACCorrupt(), plugin.NewClients())
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig3:", err)
		os.Exit(1)
	}

	// Pre-warm baselines so parallel workers do not duplicate them.
	for _, cc := range clientCounts {
		runner.Baseline(cc)
	}

	var scs []scenario.Scenario
	coords := 0
	for coord := *maskMin; coord < *maskMax; coord += *maskStep {
		coords++
		for _, cc := range clientCounts {
			scs = append(scs, space.New(map[string]int64{
				plugin.DimMACMask:          coord,
				plugin.DimCorrectClients:   cc,
				plugin.DimMaliciousClients: 1,
			}))
		}
	}
	fmt.Printf("exhaustively exploring %d scenarios (%d mask coords x %d client counts) on %d workers\n",
		len(scs), coords, len(clientCounts), *workers)
	start := time.Now()
	results := core.Sweep(scs, runner, *workers, "exhaustive")
	fmt.Printf("swept in %v (wall)\n\n", time.Since(start).Round(time.Second))

	cells := make([]trace.HeatCell, len(results))
	for i, res := range results {
		cells[i] = trace.HeatCell{
			X:      res.Scenario.GetOr(plugin.DimMACMask, 0),
			Y:      res.Scenario.GetOr(plugin.DimCorrectClients, 0),
			Result: res,
		}
	}
	hm := trace.NewHeatMap(cells)
	fmt.Printf("Figure 3: PBFT MAC fault-injection subspace (y = correct clients, x = Gray-coded mask)\n")
	hm.Render(os.Stdout, *dark, *cols)
	total := len(results)
	darkN := hm.DarkCount(*dark)
	fmt.Printf("\ndark points: %d / %d (%.1f%%)\n", darkN, total, 100*float64(darkN)/float64(total))
	darkCols := hm.DarkColumns(*dark, 0.99)
	fmt.Printf("fully-dark columns (vertical lines): %d\n", len(darkCols))
	if len(darkCols) > 0 {
		fmt.Printf("  at coordinates: %s\n", summarizeRuns(darkCols, *maskStep))
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig3:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteHeatCSV(f, cells); err != nil {
			fmt.Fprintln(os.Stderr, "fig3:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}

func parseInts(cs string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(cs, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad client count %q: %v", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no client counts given")
	}
	return out, nil
}

// summarizeRuns renders sorted coordinates as compact ranges.
func summarizeRuns(coords []int64, step int64) string {
	var parts []string
	for i := 0; i < len(coords); {
		j := i
		for j+1 < len(coords) && coords[j+1] == coords[j]+step {
			j++
		}
		if i == j {
			parts = append(parts, strconv.FormatInt(coords[i], 10))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", coords[i], coords[j]))
		}
		i = j + 1
	}
	return strings.Join(parts, ", ")
}
