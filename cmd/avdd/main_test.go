package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildBinaries compiles cmd/avd and cmd/avdd into a temp dir once per
// test run. The children run as real processes — the kill-storm proof
// needs genuine SIGKILL, fsync and process-restart behavior, not an
// in-process simulation.
func buildBinaries(t *testing.T) (avd, avdd string) {
	t.Helper()
	dir := t.TempDir()
	avd = filepath.Join(dir, "avd")
	avdd = filepath.Join(dir, "avdd")
	for bin, pkg := range map[string]string{avd: "avd/cmd/avd", avdd: "avd/cmd/avdd"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = "../.."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return avd, avdd
}

// TestKillStormBitIdentical is the tentpole's proof: a supervised
// sharded campaign whose workers are SIGKILLed mid-run must produce a
// merged campaign — results, violations, coverage digests, test counts
// — bit-identical to an uninterrupted run of the same seed and plan.
// Each SIGKILLed worker restarts, truncates any torn journal tail,
// replays its durable checkpoint and re-executes only what was never
// acknowledged; the merge then proves zero tests were lost or
// double-counted, because the summary embeds the FNV-64a fingerprint of
// the full merged checkpoint encoding.
func TestKillStormBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs real campaigns")
	}
	avd, avdd := buildBinaries(t)
	work := t.TempDir()

	run := func(name string, extra ...string) []byte {
		t.Helper()
		state := filepath.Join(work, name)
		summary := filepath.Join(work, name+".summary")
		args := []string{
			"-worker", avd,
			"-shards", "3",
			"-state", state,
			"-tests", "10",
			"-seed", "3",
			"-measure", "300ms",
			"-retries", "10",
			"-backoff", "50ms",
			"-summary", summary,
		}
		args = append(args, extra...)
		cmd := exec.Command(avdd, args...)
		var errBuf bytes.Buffer
		cmd.Stderr = &errBuf
		if out, err := cmd.Output(); err != nil {
			t.Fatalf("%s campaign: %v\nstdout:\n%s\nstderr:\n%s", name, err, out, errBuf.String())
		}
		t.Logf("%s supervision log:\n%s", name, errBuf.String())
		data, err := os.ReadFile(summary)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	clean := run("clean")
	storm := run("storm", "-storm", "5", "-stormevery", "250ms")
	if !bytes.Equal(clean, storm) {
		t.Fatalf("kill-storm campaign diverged from the uninterrupted run\n--- clean ---\n%s\n--- storm ---\n%s", clean, storm)
	}
}
