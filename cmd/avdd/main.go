// Command avdd supervises a K-way sharded vulnerability-discovery
// campaign: it launches one cmd/avd worker per shard (each exploring a
// deterministic sub-space and journaling to its own durable checkpoint
// under -state), restarts crashed or hung workers with exponential
// backoff, drains the fleet on SIGINT/SIGTERM, and — once every shard
// is done — merges the per-shard checkpoints into one campaign summary
// with exactly-once accounting.
//
//	go build -o /tmp/avd ./cmd/avd
//	go run ./cmd/avdd -worker /tmp/avd -shards 4 -state /tmp/campaign -tests 25 -seed 3
//
// The merge validates that every result lies in its shard's residue
// class and that no scenario was executed by two shards, then prints
// the merged summary and a campaign fingerprint (the FNV-64a hash of
// the merged checkpoint encoding). Two supervised runs of the same
// plan — however many times their workers were SIGKILLed in between —
// print the same fingerprint; the kill-storm test and the CI
// crash-recovery job gate on exactly that.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"avd/internal/campaign"
	"avd/internal/core"
	"avd/internal/supervise"
	"avd/internal/trace"
)

func main() {
	var (
		workerBin  = flag.String("worker", "", "path to the cmd/avd worker binary (required)")
		shards     = flag.Int("shards", 2, "number of shards K; each runs one strided sub-space")
		stateDir   = flag.String("state", "", "campaign state directory shared by all shards (required)")
		targetName = flag.String("target", "pbft", "system under test: pbft | raft")
		strategy   = flag.String("strategy", "avd", "exploration strategy: avd | random | genetic | coverage")
		tests      = flag.Int("tests", 125, "test budget per shard")
		seed       = flag.Int64("seed", 1, "random seed (every shard derives its own deterministic stream)")
		measure    = flag.Duration("measure", 1500*time.Millisecond, "virtual measurement window per test")
		pluginsCS  = flag.String("plugins", "", "comma-separated plugins forwarded to the workers")
		faultsCS   = flag.String("faults", "", "comma-separated fault plugins forwarded to the workers")
		stepBudget = flag.Uint64("stepbudget", 2_000_000, "per-test simulation event budget forwarded to the workers")
		workers    = flag.Int("workers", 1, "parallel test-execution workers per shard")
		retries    = flag.Int("retries", 5, "restarts per shard before marking it failed")
		backoff    = flag.Duration("backoff", 250*time.Millisecond, "initial restart backoff (doubles per attempt)")
		backoffMax = flag.Duration("backoffmax", 10*time.Second, "restart backoff cap")
		hungAfter  = flag.Duration("hung", 2*time.Minute, "kill a worker whose heartbeat stalls this long (0 disables)")
		stormKills = flag.Int("storm", 0, "chaos mode: SIGKILL running workers this many times mid-campaign")
		stormEvery = flag.Duration("stormevery", 300*time.Millisecond, "interval between -storm kills")
		summaryOut = flag.String("summary", "", "write the merged campaign summary to this file")
		csvPath    = flag.String("csv", "", "write merged per-test results to this CSV file")
	)
	flag.Parse()
	if *workerBin == "" || *stateDir == "" {
		fmt.Fprintln(os.Stderr, "avdd: -worker and -state are required")
		os.Exit(2)
	}
	if err := os.MkdirAll(*stateDir, 0o755); err != nil {
		fatal(err)
	}

	cfg := campaign.Config{
		Target:     *targetName,
		Strategy:   *strategy,
		Tests:      *tests,
		Seed:       *seed,
		Measure:    *measure,
		Plugins:    *pluginsCS,
		Faults:     *faultsCS,
		StepBudget: *stepBudget,
		Workers:    *workers,
		Shards:     *shards,
	}
	// The supervisor derives the same plan the workers will: Build is a
	// pure function of the flags.
	probe := cfg
	probe.Shard, probe.Shards = 0, *shards
	setup, err := campaign.Build(probe)
	if err != nil {
		fatal(err)
	}
	if *shards > 1 {
		fmt.Printf("avdd: %s over %s, budget %d x %d shards\n",
			setup.Plan, setup.Manifest.Target, *tests, *shards)
	}

	sup, err := supervise.New(supervise.Config{
		Shards: *shards,
		Command: func(k int) *exec.Cmd {
			args := []string{
				"-target", *targetName,
				"-strategy", *strategy,
				"-tests", strconv.Itoa(*tests),
				"-seed", strconv.FormatInt(*seed, 10),
				"-measure", measure.String(),
				"-stepbudget", strconv.FormatUint(*stepBudget, 10),
				"-workers", strconv.Itoa(*workers),
				"-state", *stateDir,
				"-quiet",
			}
			if *pluginsCS != "" {
				args = append(args, "-plugins", *pluginsCS)
			}
			if *faultsCS != "" {
				args = append(args, "-faults", *faultsCS)
			}
			if *shards > 1 {
				args = append(args, "-shard", fmt.Sprintf("%d/%d", k, *shards))
			}
			cmd := exec.Command(*workerBin, args...)
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
			return cmd
		},
		Heartbeat:  func(k int) string { return campaign.PathsFor(*stateDir, k, *shards).Heartbeat },
		HungAfter:  *hungAfter,
		Retries:    *retries,
		BackoffMin: *backoff,
		BackoffMax: *backoffMax,
		Log:        os.Stderr,
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *stormKills > 0 {
		go storm(ctx, sup, *shards, *stormKills, *stormEvery)
	}

	reports, runErr := sup.Run(ctx)
	survivors := 0
	for _, r := range reports {
		status := "incomplete"
		switch {
		case r.Done:
			status = "done"
			survivors++
		case r.Failed:
			status = "FAILED: " + r.Err
		case r.Drained:
			status = "drained"
		}
		fmt.Printf("avdd: shard %d: %s (%d starts, %d hung kills)\n", r.Shard, status, r.Starts, r.HungKills)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "avdd: campaign degraded: %v; merging the %d completed shards\n", runErr, survivors)
	}
	if survivors == 0 {
		fmt.Fprintln(os.Stderr, "avdd: no shard completed; nothing to merge")
		os.Exit(1)
	}

	// Merge: decode each completed shard's checkpoint with that shard's
	// own sub-space (CompactKeys are space-relative), then combine with
	// exactly-once verification.
	perShard := make([][]core.Result, *shards)
	for _, r := range reports {
		if !r.Done {
			continue // incomplete shards contribute nothing: merged output stays exact
		}
		k := r.Shard
		sub := setup.FullSpace
		if *shards > 1 {
			if sub, err = setup.Plan.Subspace(setup.FullSpace, k); err != nil {
				fatal(err)
			}
		}
		results, info, err := core.ReadDurableResults(campaign.PathsFor(*stateDir, k, *shards).Checkpoint, sub)
		if err != nil {
			fatal(fmt.Errorf("shard %d: %w", k, err))
		}
		if info.TornTail {
			fmt.Fprintf(os.Stderr, "avdd: shard %d checkpoint had a torn tail (%d bytes ignored)\n", k, info.TruncatedBytes)
		}
		perShard[k] = results
	}
	var merged []core.Result
	if *shards > 1 {
		merged, err = core.MergeShards(setup.FullSpace, setup.Plan, perShard)
		if err != nil {
			fatal(err)
		}
	} else {
		merged = perShard[0]
	}

	fp, err := core.FingerprintResults(merged)
	if err != nil {
		fatal(err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "shards %d/%d complete, %d merged results\n", survivors, *shards, len(merged))
	trace.SummarizeCampaign(&sb, *strategy, merged)
	fmt.Fprintf(&sb, "campaign fingerprint: %s\n", fp)
	fmt.Print(sb.String())
	if *summaryOut != "" {
		if err := os.WriteFile(*summaryOut, []byte(sb.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("avdd: wrote %s\n", *summaryOut)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteCampaignCSV(f, *strategy, merged); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("avdd: wrote %s\n", *csvPath)
	}
	if runErr != nil {
		os.Exit(1)
	}
}

// storm is the chaos hook: it SIGKILLs round-robin across the fleet
// until its kill budget is spent, exercising crash-resume under fire.
func storm(ctx context.Context, sup *supervise.Supervisor, shards, kills int, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for done, k := 0, 0; done < kills; k++ {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if sup.Kill(k % shards) {
				fmt.Fprintf(os.Stderr, "avdd: storm: SIGKILLed shard %d (%d/%d)\n", k%shards, done+1, kills)
				done++
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avdd:", err)
	os.Exit(1)
}
