package avd_test

import (
	"testing"
	"time"

	"avd"
)

// TestMinimizeRaftStorm is the acceptance test for scenario
// minimization: a discovered election-storm scenario shrinks to a
// strictly smaller fault schedule that still reproduces the storm
// (impact at the threshold), and the whole reduction is deterministic —
// two minimizations from the same original are identical.
func TestMinimizeRaftStorm(t *testing.T) {
	w := avd.DefaultRaftWorkload()
	w.Warmup = 300 * time.Millisecond
	// Faults arm at measurement start (snapshot/fork execution
	// semantics), so the window must be long enough for the storm to
	// develop from a healthy steady state.
	w.Measure = 1500 * time.Millisecond
	target, err := avd.NewRaftTarget(w)
	if err != nil {
		t.Fatal(err)
	}
	space, err := avd.SpaceOf(target.Plugins()...)
	if err != nil {
		t.Fatal(err)
	}
	storm := space.New(map[string]int64{
		avd.DimRaftClients:    50,
		avd.DimFlapIntervalMS: 100,
		avd.DimFlapDownMS:     400,
	})
	original := target.Run(storm)
	// With fault-free warmup (snapshot/fork semantics) the flap attack
	// tops out lower than when it also degraded the warmup: successor
	// leaders keep serving between strikes. ~0.6 is a full-blown storm.
	if original.Impact < 0.55 {
		t.Fatalf("storm scenario impact %.3f; want a real storm to minimize", original.Impact)
	}

	m1, err := avd.Minimize(target, original, avd.MinimizeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !m1.Reduced {
		t.Fatalf("storm not reduced: minimal %s weight %d vs original weight %d",
			m1.Minimal.Scenario, m1.Minimal.Scenario.Weight(), original.Scenario.Weight())
	}
	if m1.Minimal.Scenario.Weight() >= original.Scenario.Weight() {
		t.Fatalf("minimal weight %d not strictly below original %d",
			m1.Minimal.Scenario.Weight(), original.Scenario.Weight())
	}
	if m1.Minimal.Impact < m1.ImpactThreshold {
		t.Fatalf("minimal impact %.3f below threshold %.3f", m1.Minimal.Impact, m1.ImpactThreshold)
	}
	// The minimal storm must still be a flap attack: dropping the attack
	// dimensions entirely cannot reproduce an election storm.
	if m1.Minimal.Scenario.GetOr(avd.DimFlapIntervalMS, 0) == 0 ||
		m1.Minimal.Scenario.GetOr(avd.DimFlapDownMS, 0) == 0 {
		t.Fatalf("minimal scenario %s lost the attack entirely", m1.Minimal.Scenario)
	}

	m2, err := avd.Minimize(target, original, avd.MinimizeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Minimal.Scenario.Compact() != m2.Minimal.Scenario.Compact() {
		t.Fatalf("nondeterministic minimization: %s vs %s", m1.Minimal.Scenario, m2.Minimal.Scenario)
	}
	if m1.Runs != m2.Runs || m1.Minimal.Impact != m2.Minimal.Impact {
		t.Fatalf("nondeterministic minimization: runs %d/%d impact %.4f/%.4f",
			m1.Runs, m2.Runs, m1.Minimal.Impact, m2.Minimal.Impact)
	}
}
