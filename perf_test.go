// Micro-benchmarks for the campaign engine's hot paths: scenario
// identity (dedup keys), simulator timer churn, and the parallel
// campaign itself. cmd/bench runs a subset of these and records the
// numbers in BENCH_<pr>.json, the repo's performance trajectory.
package avd_test

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"avd/internal/core"
	"avd/internal/plugin"
	"avd/internal/scenario"
	"avd/internal/sim"
)

// dedupSpace is the paper's PBFT hyperspace shape (mask x clients x
// malicious), the space every campaign dedups over.
func dedupSpace(b *testing.B) (*scenario.Space, []scenario.Scenario) {
	b.Helper()
	s, err := core.Space(plugin.NewMACCorrupt(), plugin.NewClients())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	scs := make([]scenario.Scenario, 256)
	for i := range scs {
		scs[i] = s.Random(rng)
	}
	return s, scs
}

// BenchmarkScenarioKeyString is the old dedup identity: the formatted,
// sorted, joined string key (kept for reports).
func BenchmarkScenarioKeyString(b *testing.B) {
	_, scs := dedupSpace(b)
	seen := make(map[string]bool, len(scs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seen[scs[i%len(scs)].Key()] = true
	}
}

// BenchmarkScenarioKeyCompact is the new dedup identity: packed axis
// indices, no allocation.
func BenchmarkScenarioKeyCompact(b *testing.B) {
	_, scs := dedupSpace(b)
	seen := make(map[scenario.CompactKey]bool, len(scs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seen[scs[i%len(scs)].Compact()] = true
	}
}

// BenchmarkEngineSchedule measures steady-state timer churn: schedule
// plus fire, the pattern PBFT retransmission timers hammer.
func BenchmarkEngineSchedule(b *testing.B) {
	e := sim.New(1)
	fn := func() {}
	for i := 0; i < 1024; i++ { // warm the free list and heap
		e.Schedule(time.Duration(i), fn)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Microsecond, fn)
		e.Step()
	}
}

// BenchmarkFig2AVDParallel is BenchmarkFig2AVD executed by the parallel
// campaign engine with all CPUs — the campaign-throughput headline.
func BenchmarkFig2AVDParallel(b *testing.B) {
	runner := benchRunner(b, benchWorkload())
	plugins := []core.Plugin{plugin.NewMACCorrupt(), plugin.NewClients()}
	var best core.Result
	for i := 0; i < b.N; i++ {
		ctrl, err := core.NewController(core.ControllerConfig{Seed: int64(i + 1), SeedTests: 8}, plugins...)
		if err != nil {
			b.Fatal(err)
		}
		results := core.ParallelCampaign(ctrl, runner, 40, runtime.NumCPU())
		best = core.BestSoFar(results)[len(results)-1]
	}
	b.ReportMetric(best.Impact, "impact")
	b.ReportMetric(float64(runtime.NumCPU()), "workers")
}
