// Micro-benchmarks for the campaign engine's hot paths: scenario
// identity (dedup keys), simulator timer churn, and the parallel
// campaign itself. cmd/bench runs a subset of these and records the
// numbers in BENCH_<pr>.json, the repo's performance trajectory.
package avd_test

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"avd/internal/cluster"
	"avd/internal/core"
	"avd/internal/oracle"
	"avd/internal/plugin"
	"avd/internal/scenario"
	"avd/internal/sim"
)

// dedupSpace is the paper's PBFT hyperspace shape (mask x clients x
// malicious), the space every campaign dedups over.
func dedupSpace(b *testing.B) (*scenario.Space, []scenario.Scenario) {
	b.Helper()
	s, err := core.Space(plugin.NewMACCorrupt(), plugin.NewClients())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	scs := make([]scenario.Scenario, 256)
	for i := range scs {
		scs[i] = s.Random(rng)
	}
	return s, scs
}

// BenchmarkScenarioKeyString is the old dedup identity: the formatted,
// sorted, joined string key (kept for reports).
func BenchmarkScenarioKeyString(b *testing.B) {
	_, scs := dedupSpace(b)
	seen := make(map[string]bool, len(scs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seen[scs[i%len(scs)].Key()] = true
	}
}

// BenchmarkScenarioKeyCompact is the new dedup identity: packed axis
// indices, no allocation.
func BenchmarkScenarioKeyCompact(b *testing.B) {
	_, scs := dedupSpace(b)
	seen := make(map[scenario.CompactKey]bool, len(scs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seen[scs[i%len(scs)].Compact()] = true
	}
}

// BenchmarkEngineSchedule measures steady-state timer churn: schedule
// plus fire, the pattern PBFT retransmission timers hammer.
func BenchmarkEngineSchedule(b *testing.B) {
	e := sim.New(1)
	fn := func() {}
	for i := 0; i < 1024; i++ { // warm the free list and heap
		e.Schedule(time.Duration(i), fn)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Microsecond, fn)
		e.Step()
	}
}

// snapshotScenario is the Big MAC point the snapshot/fork benchmarks
// execute (30 correct clients, heavy mask).
func snapshotScenario(b *testing.B) (*cluster.Runner, scenario.Scenario) {
	b.Helper()
	w := cluster.DefaultWorkload()
	w.Measure = 500 * time.Millisecond
	r, err := cluster.NewRunner(w)
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.Space(plugin.NewMACCorrupt(), plugin.NewClients())
	if err != nil {
		b.Fatal(err)
	}
	sc := s.New(map[string]int64{
		plugin.DimMACMask:          0x3B2, // Gray-decodes to the 0xEEE mask
		plugin.DimCorrectClients:   30,
		plugin.DimMaliciousClients: 1,
	})
	r.Baseline(30)
	return r, sc
}

// BenchmarkSnapshotForkTest: one test through the fork path (restore a
// warm master, arm faults, run the measurement window). The CI
// perf-smoke job runs every Snapshot* benchmark at -benchtime=1x.
func BenchmarkSnapshotForkTest(b *testing.B) {
	r, sc := snapshotScenario(b)
	r.RunFork(sc) // build + warm + capture the master
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RunFork(sc)
	}
}

// BenchmarkSnapshotColdTest: the same test cold-building the deployment
// every time — the before picture of the fork speedup.
func BenchmarkSnapshotColdTest(b *testing.B) {
	r, sc := snapshotScenario(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Run(sc)
	}
}

// BenchmarkSnapshotOracleObserve is the oracle hot-path alloc guard: in
// the steady state (slices grown to the run's high-water mark) observing
// a commit or leadership event must not allocate.
func BenchmarkSnapshotOracleObserve(b *testing.B) {
	set := oracle.NewSet(oracle.NewAgreement("raft"), oracle.NewElectionSafety("raft"), oracle.NewCoverage())
	for seq := uint64(1); seq <= 4096; seq++ {
		for node := 0; node < 5; node++ {
			set.Observe(oracle.Event{Kind: oracle.EventCommit, Node: node, Seq: seq, Digest: seq * 31})
		}
	}
	set.Observe(oracle.Event{Kind: oracle.EventLeader, Node: 1, Term: 64})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i%4096 + 1)
		set.Observe(oracle.Event{Kind: oracle.EventCommit, Node: i % 5, Seq: seq, Digest: seq * 31})
		set.Observe(oracle.Event{Kind: oracle.EventLeader, Node: i % 5, Term: uint64(i % 64)})
	}
}

// TestOracleObserveAllocFree is the hard assert behind the benchmark.
func TestOracleObserveAllocFree(t *testing.T) {
	set := oracle.NewSet(oracle.NewAgreement("pbft"), oracle.NewCoverage())
	for seq := uint64(1); seq <= 1024; seq++ {
		for node := 0; node < 4; node++ {
			set.Observe(oracle.Event{Kind: oracle.EventCommit, Node: node, Seq: seq, Digest: seq})
		}
	}
	seq := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		seq = seq%1024 + 1
		set.Observe(oracle.Event{Kind: oracle.EventCommit, Node: int(seq) % 4, Seq: seq, Digest: seq})
	})
	if allocs != 0 {
		t.Errorf("steady-state oracle Observe allocates %.1f objects per event, want 0", allocs)
	}
}

// BenchmarkFig2AVDParallel is BenchmarkFig2AVD executed by the parallel
// campaign engine with all CPUs — the campaign-throughput headline.
func BenchmarkFig2AVDParallel(b *testing.B) {
	runner := benchRunner(b, benchWorkload())
	plugins := []core.Plugin{plugin.NewMACCorrupt(), plugin.NewClients()}
	var best core.Result
	for i := 0; i < b.N; i++ {
		ctrl, err := core.NewController(core.ControllerConfig{Seed: int64(i + 1), SeedTests: 8}, plugins...)
		if err != nil {
			b.Fatal(err)
		}
		results := core.ParallelCampaign(ctrl, runner, 40, runtime.NumCPU())
		best = core.BestSoFar(results)[len(results)-1]
	}
	b.ReportMetric(best.Impact, "impact")
	b.ReportMetric(float64(runtime.NumCPU()), "workers")
}
