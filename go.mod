module avd

go 1.24
