package avd_test

// Delta-restore property (ISSUE 5, DESIGN.md §9): an engine that
// snapshots once and then interleaves many restore/run cycles — with
// different scenarios dirtying different amounts of state each window —
// must stay bit-identical to fresh cold runs, for both targets. This is
// the contract that lets Restore copy back only touched state: any slot
// the dirty tracking misses shows up here as a trace or Result
// divergence on a later cycle.

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"avd/internal/cluster"
	"avd/internal/core"
	"avd/internal/oracle"
	"avd/internal/raftsim"
	"avd/internal/scenario"
)

// TestDeltaRestoreInterleavedPBFT runs N interleaved fork cycles on one
// PBFT runner (one master per population, restored over and over in a
// scenario order that keeps changing the dirty footprint) and compares
// every cycle against a cold reference from a fresh runner.
func TestDeltaRestoreInterleavedPBFT(t *testing.T) {
	w := pbftForkWorkload()
	forked, err := cluster.NewRunner(w)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := pbftForkScenarios(t)

	// Cold references, one fresh runner per scenario so nothing is shared.
	type ref struct {
		res   core.Result
		rep   cluster.Report
		trace []oracle.Event
	}
	refs := make([]ref, len(scenarios))
	for i, sc := range scenarios {
		cold, err := cluster.NewRunner(w)
		if err != nil {
			t.Fatal(err)
		}
		res, rep, trace := cold.RunTraced(sc)
		refs[i] = ref{res: res, rep: rep, trace: trace}
	}

	// Interleave: a deterministic shuffle with repeats, so consecutive
	// restores of one master alternate between heavy (healthy window,
	// thousands of dirtied slots) and light (collapsed window) forks.
	order := make([]int, 0, 24)
	rng := rand.New(rand.NewSource(7))
	for len(order) < cap(order) {
		order = append(order, rng.Intn(len(scenarios)))
	}
	for cycle, idx := range order {
		res, rep, trace := forked.RunTracedFork(scenarios[idx])
		label := scenarios[idx].Key()
		if !reflect.DeepEqual(res, refs[idx].res) {
			t.Fatalf("cycle %d (%s): forked Result diverged from cold:\ncold: %+v\nfork: %+v",
				cycle, label, refs[idx].res, res)
		}
		if len(rep.CrashedReplicas) != len(refs[idx].rep.CrashedReplicas) ||
			rep.CorrectCompleted != refs[idx].rep.CorrectCompleted ||
			rep.ViewsInstalled != refs[idx].rep.ViewsInstalled {
			t.Fatalf("cycle %d (%s): forked Report diverged from cold:\ncold: %+v\nfork: %+v",
				cycle, label, refs[idx].rep, rep)
		}
		if len(trace) != len(refs[idx].trace) {
			t.Fatalf("cycle %d (%s): trace length %d, cold %d", cycle, label, len(trace), len(refs[idx].trace))
		}
		for i := range trace {
			if trace[i] != refs[idx].trace[i] {
				t.Fatalf("cycle %d (%s): trace diverged at event %d: cold %v fork %v",
					cycle, label, i, refs[idx].trace[i], trace[i])
			}
		}
	}
}

// TestDeltaRestoreInterleavedRaft is the same property against the Raft
// target, whose leader-flap attack dirties the network partition maps as
// well as the engine arena.
func TestDeltaRestoreInterleavedRaft(t *testing.T) {
	w := raftsim.DefaultWorkload()
	w.Warmup = 300 * time.Millisecond
	w.Measure = 600 * time.Millisecond
	forked, err := raftsim.NewRunner(w)
	if err != nil {
		t.Fatal(err)
	}
	space := scenario.MustNewSpace(
		scenario.Dimension{Name: raftsim.DimClients, Min: 1, Max: 50, Step: 1},
		scenario.Dimension{Name: raftsim.DimFlapIntervalMS, Min: 0, Max: 1000, Step: 50},
		scenario.Dimension{Name: raftsim.DimFlapDownMS, Min: 0, Max: 1000, Step: 50},
	)
	scenarios := []scenario.Scenario{
		// Clean run: nothing but the engine clock and client state dirty.
		space.New(map[string]int64{raftsim.DimClients: 8}),
		// Election storm: partitions flap, terms inflate, maps churn.
		space.New(map[string]int64{
			raftsim.DimClients:        8,
			raftsim.DimFlapIntervalMS: 250,
			raftsim.DimFlapDownMS:     200,
		}),
		// Slow flap: long isolation windows, different timer footprint.
		space.New(map[string]int64{
			raftsim.DimClients:        8,
			raftsim.DimFlapIntervalMS: 500,
			raftsim.DimFlapDownMS:     450,
		}),
	}
	type ref struct {
		res   core.Result
		trace []oracle.Event
	}
	refs := make([]ref, len(scenarios))
	for i, sc := range scenarios {
		cold, err := raftsim.NewRunner(w)
		if err != nil {
			t.Fatal(err)
		}
		res, _, trace := cold.RunTraced(sc)
		refs[i] = ref{res: res, trace: trace}
	}
	order := make([]int, 0, 24)
	rng := rand.New(rand.NewSource(11))
	for len(order) < cap(order) {
		order = append(order, rng.Intn(len(scenarios)))
	}
	for cycle, idx := range order {
		res, _, trace := forked.RunTracedFork(scenarios[idx])
		label := scenarios[idx].Key()
		if !reflect.DeepEqual(res, refs[idx].res) {
			t.Fatalf("cycle %d (%s): forked Result diverged from cold:\ncold: %+v\nfork: %+v",
				cycle, label, refs[idx].res, res)
		}
		if len(trace) != len(refs[idx].trace) {
			t.Fatalf("cycle %d (%s): trace length %d, cold %d", cycle, label, len(trace), len(refs[idx].trace))
		}
		for i := range trace {
			if trace[i] != refs[idx].trace[i] {
				t.Fatalf("cycle %d (%s): trace diverged at event %d: cold %v fork %v",
					cycle, label, i, refs[idx].trace[i], trace[i])
			}
		}
	}
}
